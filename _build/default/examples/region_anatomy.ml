(* Anatomy of a predicated region (the paper's Figure 3 → Figure 4 walk):
   a loop whose body is a diamond is collapsed into one region. The join
   block's two path predicates (c0 and !c0) merge back to "always" (the
   equivalent-block rule of §3.3), both arms execute speculatively under
   complementary predicates, and the loop's back edge and exit become
   predicated exit slots.

     dune exec examples/region_anatomy.exe *)

open Psb_isa
open Psb_workloads.Dsl
module Driver = Psb_compiler.Driver
module Model = Psb_compiler.Model
module Runit = Psb_compiler.Runit
module Sched = Psb_compiler.Sched
module Cfg = Psb_cfg.Cfg
module Machine_model = Psb_machine.Machine_model

let program =
  Program.make ~entry:(lbl "entry")
    [
      block "entry" [ mov 1 (i 0); mov 2 (i 0); mov 3 (i 0) ] (jmp "head");
      block "head"
        [ add 6 (r 20) (r 1); load 4 6 0; cmp 5 Opcode.Ne (r 4) (i 0) ]
        (br 5 "then" "else");
      block "then" [ add 2 (r 2) (r 4) ] (jmp "join");
      block "else" [ add 3 (r 3) (i 1) ] (jmp "join");
      block "join" [ add 1 (r 1) (i 1); cmp 5 Opcode.Lt (r 1) (i 32) ]
        (br 5 "head" "exit");
      block "exit" [ out (r 2); out (r 3) ] halt;
    ]

let make_mem () =
  let mem = Memory.create ~size:64 in
  let rand = lcg 3 in
  for k = 0 to 31 do
    Memory.poke mem k (rand () mod 2 * (1 + (rand () mod 9)))
  done;
  mem

let () =
  let scalar, profile = Driver.profile_of program ~regs:[] ~mem:(make_mem ()) in

  Format.printf "--- scalar CFG ---@.%a@." Program.pp program;

  (* Region formation alone: copies, predicates, exits. *)
  let cfg = Cfg.of_program program in
  let params =
    Runit.default_params ~scope:Model.Region ~max_conds:4 ~fuse_compare:true ()
  in
  let u =
    Runit.build params cfg profile ~header:(lbl "head")
      ~avoid:(Label.Set.of_list [ lbl "entry"; lbl "head" ])
  in
  Format.printf "--- region grown from `head` ---@.%a@." Runit.pp u;

  (* The schedule: note both diamond arms issuing speculatively under c0 /
     !c0 before the condition is set, like i15/i10 in Table 1. *)
  let sched =
    Sched.schedule Model.region_pred Machine_model.base ~single_shadow:true u
  in
  Format.printf "--- 4-issue schedule ---@.%a@." Sched.pp sched;
  Format.printf "--- predicated VLIW code ---@.%a@." Psb_machine.Pcode.pp_region
    (Sched.emit sched);

  (* And the payoff. *)
  let compiled =
    Driver.compile ~model:Model.region_pred ~machine:Machine_model.base
      ~profile program
  in
  let vliw = Driver.run_vliw compiled ~regs:[] ~mem:(make_mem ()) in
  Format.printf "@.scalar %d cycles -> predicated %d cycles (%.2fx)@."
    scalar.Interp.cycles vliw.Psb_machine.Vliw_sim.cycles
    (float_of_int scalar.Interp.cycles
    /. float_of_int vliw.Psb_machine.Vliw_sim.cycles);
  assert (vliw.Psb_machine.Vliw_sim.output = scalar.Interp.output)
