examples/region_anatomy.mli:
