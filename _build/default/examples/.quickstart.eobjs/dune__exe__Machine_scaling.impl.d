examples/machine_scaling.ml: Dsl Format Interp List Psb_compiler Psb_isa Psb_machine Psb_workloads Suite
