examples/machine_scaling.mli:
