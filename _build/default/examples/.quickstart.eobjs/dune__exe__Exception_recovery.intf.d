examples/exception_recovery.mli:
