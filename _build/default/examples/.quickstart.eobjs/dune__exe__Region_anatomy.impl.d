examples/region_anatomy.ml: Format Interp Label Memory Opcode Program Psb_cfg Psb_compiler Psb_isa Psb_machine Psb_workloads
