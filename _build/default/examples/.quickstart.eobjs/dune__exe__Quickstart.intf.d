examples/quickstart.mli:
