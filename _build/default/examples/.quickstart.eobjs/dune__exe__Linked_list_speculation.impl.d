examples/linked_list_speculation.ml: Format Interp List Memory Opcode Program Psb_compiler Psb_isa Psb_machine Psb_workloads String
