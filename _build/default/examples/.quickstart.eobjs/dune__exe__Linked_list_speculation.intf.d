examples/linked_list_speculation.mli:
