examples/quickstart.ml: Format Interp Label List Memory Opcode Program Psb_compiler Psb_isa Psb_machine Psb_workloads String
