(* The paper's §2.1 motivating example: traversing a NULL-terminated
   linked list. The next-pointer dereference sits on the critical path, so
   the compiler wants to move it above the "pointer is NULL?" branch — but
   on the last iteration that speculative load dereferences NULL and
   faults. Predicated state buffering records the fault in flag E of the
   destination's shadow entry; when the loop-exit condition resolves, the
   predicate evaluates false and the fault is squashed without a trace.

     dune exec examples/linked_list_speculation.exe *)

open Psb_isa
open Psb_workloads.Dsl
module Driver = Psb_compiler.Driver
module Model = Psb_compiler.Model
module Machine_model = Psb_machine.Machine_model
module Vliw_sim = Psb_machine.Vliw_sim

(* Node layout: [value; next]; NULL is -1, so dereferencing it is an
   out-of-bounds fault — fatal if it were ever committed. *)
let program =
  Program.make ~entry:(lbl "entry")
    [
      block "entry" [ mov 2 (i 0) ] (jmp "head");
      block "head" [ cmp 4 Opcode.Ge (r 1) (i 0) ] (br 4 "body" "done");
      block "body"
        [
          load 3 1 0 (* value *);
          add 2 (r 2) (r 3);
          load 1 1 1 (* next — speculated above the NULL check *);
        ]
        (jmp "head");
      block "done" [ out (r 2) ] halt;
    ]

let make_mem ~nodes =
  let mem = Memory.create ~size:1024 in
  List.iteri
    (fun k v ->
      let a = 16 + (4 * k) in
      Memory.poke mem a v;
      Memory.poke mem (a + 1) (if k = nodes - 1 then -1 else a + 4))
    (List.init nodes (fun k -> (k + 1) * 3))
  |> ignore;
  mem

let () =
  let nodes = 12 in
  let regs = [ (reg 1, 16) ] in
  let scalar, profile =
    Driver.profile_of program ~regs ~mem:(make_mem ~nodes)
  in
  Format.printf "scalar: %d cycles, sum = %s@." scalar.Interp.cycles
    (String.concat "," (List.map string_of_int scalar.Interp.output));

  let compiled =
    Driver.compile ~model:Model.region_pred ~machine:Machine_model.base
      ~profile program
  in
  (* Show the predicated loop body: the next-pointer load carries the
     loop-continuation predicate and will fault speculatively. *)
  (match compiled.Driver.pcode with
  | Some code ->
      Format.printf "@.predicated loop region:@.%a@." Psb_machine.Pcode.pp_region
        (Psb_machine.Pcode.find_region code (lbl "head"))
  | None -> assert false);

  let vliw = Driver.run_vliw compiled ~regs ~mem:(make_mem ~nodes) in
  Format.printf "@.vliw:   %d cycles (%.2fx), sum = %s@." vliw.Vliw_sim.cycles
    (float_of_int scalar.Interp.cycles /. float_of_int vliw.Vliw_sim.cycles)
    (String.concat "," (List.map string_of_int vliw.Vliw_sim.output));
  Format.printf
    "the speculative NULL dereference was buffered and squashed:@.";
  Format.printf "  outcome:          %a (no fatal fault!)@." Interp.pp_outcome
    vliw.Vliw_sim.outcome;
  Format.printf "  squashed values:  %d@." vliw.Vliw_sim.stats.Vliw_sim.squashes;
  Format.printf "  recoveries:       %d (predicate never committed the fault)@."
    vliw.Vliw_sim.stats.Vliw_sim.recoveries;
  assert (vliw.Vliw_sim.outcome = Interp.Halted);
  assert (vliw.Vliw_sim.output = scalar.Interp.output)
